package parallel

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1} {
		if got := Workers(n); got != want {
			t.Fatalf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		const n = 100
		var counts [n]atomic.Int32
		if err := ForEach(context.Background(), n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	err := ForEach(context.Background(), 64, workers, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestForEachCancellationMidFanout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	err := ForEach(ctx, 10_000, 4, func(i int) error {
		if started.Add(1) == 8 {
			cancel() // cancel from inside the fan-out
		}
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n == 10_000 {
		t.Fatal("cancellation did not stop the fan-out early")
	}
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEach(ctx, 5, 1, func(i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("task ran under a pre-cancelled context")
	}
}

func TestForEachFirstErrorStopsPool(t *testing.T) {
	sentinel := errors.New("boom")
	var after atomic.Int32
	err := ForEach(context.Background(), 10_000, 4, func(i int) error {
		if i == 3 {
			return sentinel
		}
		after.Add(1)
		time.Sleep(20 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if n := after.Load(); n == 9_999 {
		t.Fatal("error did not stop the remaining tasks")
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 100, workers, func(i int) error {
			if i == 17 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "panicked: kaboom") {
			t.Fatalf("workers=%d: err = %v, want panic conversion", workers, err)
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 5} {
		out, err := Map(context.Background(), 50, workers, func(i int) (int, error) {
			time.Sleep(time.Duration(50-i) * 10 * time.Microsecond) // finish out of order
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapErrorReturnsNil(t *testing.T) {
	out, err := Map(context.Background(), 10, 2, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v, want nil slice and error", out, err)
	}
}

func TestForEachChunkCoversRangeExactly(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000} {
		for _, workers := range []int{1, 3, 16} {
			covered := make([]atomic.Int32, n)
			if err := ForEachChunk(context.Background(), n, workers, func(lo, hi int) error {
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
				return nil
			}); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range covered {
				if c := covered[i].Load(); c != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestForEachChunkPanicBecomesError(t *testing.T) {
	err := ForEachChunk(context.Background(), 10, 1, func(lo, hi int) error {
		panic("chunk kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked: chunk kaboom") {
		t.Fatalf("err = %v, want panic conversion", err)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(i int) error {
		t.Fatal("task ran")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
