// Package parallel provides the bounded worker pool shared by every
// concurrent search in this repository. Its contract is shaped by the
// compilation engine's reproducibility guarantee: the pool distributes
// *work* nondeterministically but never *results* — callers index results
// by task number (Map) or reduce over a deterministic order, so a seeded
// search returns byte-identical output at any worker count.
//
// All entry points honor context cancellation (stopping within one task)
// and convert panics inside tasks into errors, so a worker goroutine can
// never crash the process or deadlock its siblings.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values below 1 mean "use
// every available CPU" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), distributing calls over at
// most `workers` goroutines (normalized by Workers). The first error — or
// the first panic, converted to an error — cancels the remaining tasks;
// context cancellation does the same and returns ctx.Err(). With one
// worker the tasks run inline on the calling goroutine in index order.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := protect(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := protect(fn, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// ForEachChunk splits [0, n) into contiguous ranges and invokes
// fn(lo, hi) for each over the pool. It is ForEach for tasks too cheap to
// dispatch one at a time (e.g. scoring one candidate merge): the chunk
// count is a small multiple of the worker count so the pool stays
// balanced without per-index scheduling overhead.
func ForEachChunk(ctx context.Context, n, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return protectRange(fn, 0, n)
	}
	chunks := workers * 8
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	return ForEach(ctx, chunks, workers, func(c int) error {
		lo := c * size
		if lo >= n {
			return nil
		}
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

// Map computes out[i] = fn(i) for every i in [0, n) over the pool and
// returns the results in index order regardless of completion order. A
// failed or cancelled run returns (nil, err).
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func protect(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

func protectRange(fn func(lo, hi int) error, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: tasks [%d,%d) panicked: %v", lo, hi, r)
		}
	}()
	return fn(lo, hi)
}
