package obs

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "requests", "route")
	g := reg.Gauge("test_depth", "queue depth")
	c.Inc("a")
	c.Add(2, "a")
	c.Inc("b")
	g.Set(7)
	if v := c.Value("a"); v != 3 {
		t.Fatalf("counter a = %v, want 3", v)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		`test_requests_total{route="a"} 3`,
		`test_requests_total{route="b"} 1`,
		"# TYPE test_depth gauge",
		"test_depth 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration did not panic")
		}
	}()
	reg.Gauge("dup_total", "y")
}

func TestFuncMetricsRender(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("test_injected_total", "fault injections", []string{"site"}, func() []Sample {
		return []Sample{
			{Labels: []string{"store.disk.write"}, Value: 4},
			{Labels: []string{"fleet.peer.dial"}, Value: 2},
		}
	})
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Samples sort by label value for deterministic scrapes.
	i := strings.Index(out, `site="fleet.peer.dial"`)
	j := strings.Index(out, `site="store.disk.write"`)
	if i < 0 || j < 0 || i > j {
		t.Fatalf("func samples missing or unsorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_esc_total", "escapes", "v")
	c.Inc("a\"b\\c\nd")
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `v="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestHistogramText(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "latency", []float64{0.1, 1}, "route")
	h.Observe(0.05, "a")
	h.Observe(0.5, "a")
	h.Observe(5, "a")
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{route="a",le="0.1"} 1`,
		`test_latency_seconds_bucket{route="a",le="1"} 2`,
		`test_latency_seconds_bucket{route="a",le="+Inf"} 3`,
		`test_latency_seconds_count{route="a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `test_latency_seconds_sum{route="a"} 5.55`) {
		t.Errorf("sum line wrong:\n%s", out)
	}
}

// Exact quantile fixtures: hand-computed interpolation results.
func TestBucketQuantileFixtures(t *testing.T) {
	buckets := []float64{1, 2, 4}
	tests := []struct {
		name   string
		counts []uint64 // per bucket, then +Inf
		total  uint64
		q      float64
		want   float64
	}{
		// 10 samples in (1,2]: rank ceil(.5*10)=5 → 1 + 1*(5/10) = 1.5
		{"uniform one bucket p50", []uint64{0, 10, 0, 0}, 10, 0.50, 1.5},
		// same bucket, p99 → rank 10 → 1 + 1*(10/10) = 2
		{"uniform one bucket p99", []uint64{0, 10, 0, 0}, 10, 0.99, 2},
		// 4 in first bucket, 4 in third: p50 rank 4 → first bucket upper = 0 + 1*(4/4)
		{"two buckets p50", []uint64{4, 0, 4, 0}, 8, 0.50, 1},
		// p75 rank 6 → third bucket, cum=4 before → 2 + 2*(2/4) = 3
		{"two buckets p75", []uint64{4, 0, 4, 0}, 8, 0.75, 3},
		// everything overflowed: saturate at last finite bound
		{"inf saturation", []uint64{0, 0, 0, 7}, 7, 0.50, 4},
		{"empty", []uint64{0, 0, 0, 0}, 0, 0.50, 0},
		// single sample: rank 1 of 1 interpolates to its bucket's upper bound
		{"single sample p01", []uint64{0, 0, 1, 0}, 1, 0.01, 4},
	}
	for _, tt := range tests {
		if got := bucketQuantile(buckets, tt.counts, tt.total, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: bucketQuantile = %v, want %v", tt.name, got, tt.want)
		}
	}
}

// Property test: for a deterministic pseudo-random sample set, the
// bucketed quantile estimate must land inside the bucket that contains
// the exact nearest-rank value (the same percentile definition hattload
// uses on its sorted latency samples).
func TestBucketQuantileVsNearestRank(t *testing.T) {
	buckets := DefLatencyBuckets
	maxv := buckets[len(buckets)-1]
	for _, n := range []int{1, 7, 100, 1000} {
		h := NewRegistry().Histogram("prop_seconds", "p", buckets)
		samples := make([]float64, n)
		seed := uint64(n) * 0x9e3779b97f4a7c15
		for i := range samples {
			// Deterministic stream in (0, maxv]; splitmix64 keeps the test
			// reproducible without any global RNG.
			u := float64(splitmix64(seed+uint64(i))%1_000_000) / 1_000_000
			samples[i] = math.Max(1e-6, u*u*maxv) // squared: skew toward small latencies
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			bi := bucketIndex(buckets, exact)
			lo := 0.0
			if bi > 0 {
				lo = buckets[bi-1]
			}
			hi := maxv
			if bi < len(buckets) {
				hi = buckets[bi]
			}
			got := h.Quantile(q)
			if got < lo || got > hi {
				t.Errorf("n=%d q=%v: estimate %v outside bucket [%v, %v] of exact nearest-rank %v",
					n, q, got, lo, hi, exact)
			}
		}
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {3, "3"}, {-2, "-2"}, {0.25, "0.25"}, {1e15, "1e+15"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.v); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
