package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's type in the Prometheus sense.
type Kind string

// Metric family kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Sample is one labeled value produced by a func-backed family.
type Sample struct {
	Labels []string // one value per registered label name, in order
	Value  float64
}

// FamilyInfo describes one registered metric family — the unit the
// docs/observability.md inventory is held to by the docsync test.
type FamilyInfo struct {
	Name   string
	Kind   Kind
	Labels []string
	Help   string
}

// family is one registered metric family: either an instrument
// (counter/gauge/histogram with live children) or a collector function
// evaluated at gather time (the bridge to counters that already live
// elsewhere — store, fleet, fault, manager — so /metrics and /v1/stats
// read the same underlying state and cannot drift).
type family struct {
	info    FamilyInfo
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	order    []string // child keys, first-seen order (sorted at render)

	collect func() []Sample // func-backed families; nil for instruments
}

// child is one label combination's state.
type child struct {
	labels []string
	mu     sync.Mutex
	value  float64  // counter/gauge
	counts []uint64 // histogram: per-bucket counts (len(buckets)+1, last is +Inf)
	sum    float64  // histogram
	count  uint64   // histogram
}

// Registry holds metric families and renders them as Prometheus text.
// Families are registered once at wiring time (duplicate names panic —
// a programmer error, not a runtime condition) and scraped concurrently
// with updates.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	name := f.info.Name
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.families[name] = f
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter registers a monotonically increasing counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := &family{
		info:     FamilyInfo{Name: name, Kind: KindCounter, Labels: labels, Help: help},
		children: make(map[string]*child),
	}
	r.register(f)
	return &Counter{f: f}
}

// Gauge registers a gauge family (a value that can go up and down).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := &family{
		info:     FamilyInfo{Name: name, Kind: KindGauge, Labels: labels, Help: help},
		children: make(map[string]*child),
	}
	r.register(f)
	return &Gauge{f: f}
}

// Histogram registers a fixed-bucket histogram family. buckets are the
// inclusive upper bounds of each bucket, strictly increasing; a final
// +Inf bucket is implicit. p50/p95/p99 estimates are derivable from the
// cumulative bucket counts (see Quantile).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	f := &family{
		info:     FamilyInfo{Name: name, Kind: KindHistogram, Labels: labels, Help: help},
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.register(f)
	return &Histogram{f: f}
}

// CounterFunc registers a counter family whose samples are produced by
// fn at gather time — the bridge for counters owned elsewhere (store
// hits, fleet fetch outcomes, fault injections) so the one underlying
// atomic feeds /v1/stats and /metrics alike.
func (r *Registry) CounterFunc(name, help string, labels []string, fn func() []Sample) {
	r.register(&family{
		info:    FamilyInfo{Name: name, Kind: KindCounter, Labels: labels, Help: help},
		collect: fn,
	})
}

// GaugeFunc is CounterFunc for gauges.
func (r *Registry) GaugeFunc(name, help string, labels []string, fn func() []Sample) {
	r.register(&family{
		info:    FamilyInfo{Name: name, Kind: KindGauge, Labels: labels, Help: help},
		collect: fn,
	})
}

// Families lists every registered family, sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DefLatencyBuckets is the default latency histogram layout, in
// seconds: half a millisecond through ten seconds in a 1-2.5-5-ish
// progression, which brackets everything from a cache hit to a worst-
// case routed compile.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func (f *family) child(labelValues []string) *child {
	if len(labelValues) != len(f.info.Labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.info.Name, len(f.info.Labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: append([]string(nil), labelValues...)}
		if f.info.Kind == KindHistogram {
			c.counts = make([]uint64, len(f.buckets)+1)
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter is a monotonically increasing metric.
type Counter struct{ f *family }

// Add increments the counter for one label combination. delta must be
// ≥ 0.
func (c *Counter) Add(delta float64, labelValues ...string) {
	ch := c.f.child(labelValues)
	ch.mu.Lock()
	ch.value += delta
	ch.mu.Unlock()
}

// Inc is Add(1).
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Value reads the counter for one label combination.
func (c *Counter) Value(labelValues ...string) float64 {
	ch := c.f.child(labelValues)
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.value
}

// Gauge is a settable metric.
type Gauge struct{ f *family }

// Set stores the gauge value for one label combination.
func (g *Gauge) Set(v float64, labelValues ...string) {
	ch := g.f.child(labelValues)
	ch.mu.Lock()
	ch.value = v
	ch.mu.Unlock()
}

// Histogram is a fixed-bucket distribution metric.
type Histogram struct{ f *family }

// Observe records one sample for one label combination.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	ch := h.f.child(labelValues)
	i := bucketIndex(h.f.buckets, v)
	ch.mu.Lock()
	ch.counts[i]++
	ch.sum += v
	ch.count++
	ch.mu.Unlock()
}

// bucketIndex finds the first bucket whose upper bound holds v (the
// +Inf bucket is index len(buckets)). Buckets are few and fixed, so a
// linear scan beats a binary search's branch misses at this size.
func bucketIndex(buckets []float64, v float64) int {
	for i, ub := range buckets {
		if v <= ub {
			return i
		}
	}
	return len(buckets)
}

// Count reports how many samples one label combination has observed.
func (h *Histogram) Count(labelValues ...string) uint64 {
	ch := h.f.child(labelValues)
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.count
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of one label
// combination from the bucket counts: the nearest-rank target is
// located in its bucket and the value is interpolated linearly inside
// the bucket's bounds. Samples landing in the +Inf bucket pin the
// estimate to the last finite bound — with well-chosen buckets that is
// the documented saturation behavior of every bucketed histogram.
// Returns 0 with no samples.
func (h *Histogram) Quantile(q float64, labelValues ...string) float64 {
	ch := h.f.child(labelValues)
	ch.mu.Lock()
	counts := append([]uint64(nil), ch.counts...)
	total := ch.count
	ch.mu.Unlock()
	return bucketQuantile(h.f.buckets, counts, total, q)
}

// bucketQuantile is the pure bucket → quantile estimate, split out so
// the math is testable against exact fixtures and nearest-rank
// properties without a registry.
func bucketQuantile(buckets []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(buckets) {
				// +Inf bucket: saturate at the last finite bound.
				return buckets[len(buckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = buckets[i-1]
			}
			hi := buckets[i]
			// Linear interpolation by rank position inside the bucket.
			return lo + (hi-lo)*float64(rank-cum)/float64(n)
		}
		cum += n
	}
	return buckets[len(buckets)-1]
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, children sorted by
// label values, histograms expanded into _bucket/_sum/_count series.
// The output is deterministic for a fixed registry state.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.info.Name, escapeHelp(f.info.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.info.Name, f.info.Kind)
		if f.collect != nil {
			samples := f.collect()
			sort.Slice(samples, func(i, j int) bool {
				return labelKey(samples[i].Labels) < labelKey(samples[j].Labels)
			})
			for _, s := range samples {
				writeSample(&b, f.info.Name, f.info.Labels, s.Labels, "", "", s.Value)
			}
		} else {
			f.writeChildren(&b)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChildren(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	for _, ch := range children {
		ch.mu.Lock()
		switch f.info.Kind {
		case KindHistogram:
			var cum uint64
			for i, n := range ch.counts {
				cum += n
				le := "+Inf"
				if i < len(f.buckets) {
					le = formatFloat(f.buckets[i])
				}
				writeSample(b, f.info.Name+"_bucket", f.info.Labels, ch.labels, "le", le, float64(cum))
			}
			writeSample(b, f.info.Name+"_sum", f.info.Labels, ch.labels, "", "", ch.sum)
			writeSample(b, f.info.Name+"_count", f.info.Labels, ch.labels, "", "", float64(ch.count))
		default:
			writeSample(b, f.info.Name, f.info.Labels, ch.labels, "", "", ch.value)
		}
		ch.mu.Unlock()
	}
}

// writeSample renders one series line, with an optional extra label
// (the histogram "le").
func writeSample(b *strings.Builder, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelValues[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func labelKey(values []string) string { return strings.Join(values, "\x00") }

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
