package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request end to end, across fleet nodes.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports the invalid all-zero ID (the W3C spec reserves it).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String is the canonical lowercase-hex form (32 chars).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String is the canonical lowercase-hex form (16 chars).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses the 32-char lowercase-hex form. The all-zero ID
// is rejected — it is the W3C "invalid" sentinel, never a real trace.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 2*len(t) || !isLowerHex(s) {
		return TraceID{}, fmt.Errorf("obs: trace ID must be %d lowercase hex chars", 2*len(t))
	}
	hex.Decode(t[:], []byte(s))
	if t.IsZero() {
		return TraceID{}, fmt.Errorf("obs: all-zero trace ID is invalid")
	}
	return t, nil
}

// SpanContext is the propagated identity of one point in a trace: which
// trace, and which span is the current parent.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are set (non-zero).
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// The W3C traceparent header: version "00", lowercase hex throughout,
// all-zero trace and parent IDs invalid.
const traceparentHeader = "traceparent"

// ParseTraceparent parses a W3C traceparent header value
// ("00-{32 hex trace id}-{16 hex parent id}-{2 hex flags}"). It is
// deliberately strict — anything malformed reports false and the caller
// starts a fresh trace, which is the spec's prescribed recovery.
func ParseTraceparent(h string) (SpanContext, bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	tid, sid, flags := h[3:35], h[36:52], h[53:55]
	if !isLowerHex(tid) || !isLowerHex(sid) || !isLowerHex(flags) {
		return SpanContext{}, false
	}
	var sc SpanContext
	hex.Decode(sc.TraceID[:], []byte(tid))
	hex.Decode(sc.SpanID[:], []byte(sid))
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Traceparent formats sc as a W3C traceparent header value with the
// sampled flag set (this tracer records everything it is asked to).
func Traceparent(sc SpanContext) string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// InjectTraceparent stamps the context's span identity onto an outgoing
// request's headers (the fleet peer-fetch path), so the receiving node
// joins the originating trace. A context without a span is a no-op.
func InjectTraceparent(ctx context.Context, h http.Header) {
	if sc := SpanContextFrom(ctx); sc.Valid() {
		h.Set(traceparentHeader, Traceparent(sc))
	}
}

// TraceparentFrom extracts and validates the traceparent header of an
// incoming request.
func TraceparentFrom(h http.Header) (SpanContext, bool) {
	return ParseTraceparent(h.Get(traceparentHeader))
}

// Context plumbing. The tracer and the current span context travel in
// context.Context so instrumentation points need no wiring beyond the
// ctx they already thread.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer attaches a tracer; StartSpan below it records spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the attached tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithSpanContext sets the current span identity — used at the HTTP
// edge to adopt a remote parent before opening the root span.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanKey, sc)
}

// SpanContextFrom returns the current span identity, or the zero value.
func SpanContextFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanKey).(SpanContext)
	return sc
}

// Span is one named, timed unit of work inside a trace. The nil *Span
// is a valid no-op span — StartSpan returns it when the context has no
// tracer, which is what makes instrumentation zero-cost when tracing is
// off: one context lookup, one nil check, no allocation.
type Span struct {
	tracer *Tracer
	name   string
	sc     SpanContext
	parent SpanID
	start  time.Time
	attrs  []Attr
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value string
}

// StartSpan opens a span named name under the context's current span
// (or as a trace root when there is none) and returns the child context
// carrying the new span's identity. Without a tracer in ctx it returns
// (ctx, nil) — and the nil span's methods are all no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := SpanContextFrom(ctx)
	sc := SpanContext{TraceID: parent.TraceID, SpanID: tr.nextSpanID()}
	if sc.TraceID.IsZero() {
		sc.TraceID = tr.nextTraceID()
	}
	sp := &Span{tracer: tr, name: name, sc: sc, parent: parent.SpanID, start: time.Now()}
	return WithSpanContext(ctx, sc), sp
}

// Context returns the span's identity (zero for the nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a key/value attribute. No-op on the nil span.
func (s *Span) SetAttr(key, value string) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
}

// End records the span into its tracer's buffer (and stage-duration
// histogram, when attached). No-op on the nil span. End must be called
// at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.record(s, time.Since(s.start))
}

// SpanRecord is the stored (and wire) form of an ended span.
type SpanRecord struct {
	Name        string            `json:"name"`
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	StartUnixUS int64             `json:"start_unix_us"`
	DurationUS  int64             `json:"duration_us"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// TraceSnapshot is one buffered trace: the span timeline served by
// GET /v1/traces/{id} and embedded in responses as the trace block.
// Spans appear in end order (children before parents, since a parent
// ends last).
type TraceSnapshot struct {
	TraceID string       `json:"trace_id"`
	Spans   []SpanRecord `json:"spans"`
	// Dropped counts spans discarded after the per-trace cap was hit.
	Dropped int `json:"dropped_spans,omitempty"`
}

// traceBuf is one trace's recorded spans.
type traceBuf struct {
	id      TraceID
	spans   []SpanRecord
	dropped int
}

// Tracer records ended spans into a bounded in-memory buffer of recent
// traces. Eviction is FIFO by trace creation: when a new trace would
// exceed the capacity, the oldest-created trace is dropped — recent
// requests are the ones an operator chasing a slow Trace-Id still
// holds, so recency by arrival is the retention that matters.
type Tracer struct {
	capacity int // max buffered traces
	spanCap  int // max recorded spans per trace

	mu     sync.Mutex
	traces map[TraceID]*traceBuf
	order  []TraceID // creation order, oldest first

	evicted atomic.Int64
	idctr   atomic.Uint64
	idbase  uint64

	stage *Histogram // optional stage-duration sink, set by SetStageHistogram
}

// Default tracer bounds: enough recent traces to chase a load
// generator's slowest tail, small enough to never matter in RSS.
const (
	DefaultTraceCapacity = 512
	DefaultSpanCap       = 128
)

// NewTracer builds a tracer buffering up to capacity traces
// (DefaultTraceCapacity when ≤ 0), each keeping at most DefaultSpanCap
// spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	var seed [8]byte
	_, _ = crand.Read(seed[:]) // a zero seed only weakens ID uniqueness across restarts
	return &Tracer{
		capacity: capacity,
		spanCap:  DefaultSpanCap,
		traces:   make(map[TraceID]*traceBuf, capacity),
		idbase:   binary.LittleEndian.Uint64(seed[:]),
	}
}

// SetStageHistogram attaches the histogram every ended span is observed
// into, labeled (stage = span name, method = the span's "method" attr).
func (t *Tracer) SetStageHistogram(h *Histogram) { t.stage = h }

// nextID draws the next value of the tracer's splitmix64 ID stream:
// unique within the process, seeded randomly so two nodes do not mint
// colliding trace IDs.
func (t *Tracer) nextID() uint64 {
	for {
		if id := splitmix64(t.idbase + t.idctr.Add(1)); id != 0 {
			return id
		}
	}
}

func (t *Tracer) nextTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	return id
}

func (t *Tracer) nextSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	return id
}

// record stores one ended span, creating (and if necessary evicting)
// trace buffers.
func (t *Tracer) record(s *Span, d time.Duration) {
	rec := SpanRecord{
		Name:        s.name,
		SpanID:      s.sc.SpanID.String(),
		StartUnixUS: s.start.UnixMicro(),
		DurationUS:  d.Microseconds(),
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	method := ""
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
			if a.Key == "method" {
				method = a.Value
			}
		}
	}
	if t.stage != nil {
		t.stage.Observe(d.Seconds(), s.name, method)
	}

	t.mu.Lock()
	tb, ok := t.traces[s.sc.TraceID]
	if !ok {
		for len(t.order) >= t.capacity {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.traces, oldest)
			t.evicted.Add(1)
		}
		tb = &traceBuf{id: s.sc.TraceID}
		t.traces[s.sc.TraceID] = tb
		t.order = append(t.order, s.sc.TraceID)
	}
	if len(tb.spans) >= t.spanCap {
		tb.dropped++
	} else {
		tb.spans = append(tb.spans, rec)
	}
	t.mu.Unlock()
}

// Snapshot returns a copy of one buffered trace's timeline.
func (t *Tracer) Snapshot(id TraceID) (TraceSnapshot, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tb, ok := t.traces[id]
	if !ok {
		return TraceSnapshot{}, false
	}
	snap := TraceSnapshot{
		TraceID: id.String(),
		Spans:   append([]SpanRecord(nil), tb.spans...),
		Dropped: tb.dropped,
	}
	return snap, true
}

// Len reports how many traces are buffered.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// Evicted reports how many traces the buffer has dropped for capacity.
func (t *Tracer) Evicted() int64 { return t.evicted.Load() }

// splitmix64 is the repository's shared deterministic mixer (same as
// hattload, internal/fault, and the fleet breaker jitter), used here to
// stretch one random seed into a unique ID stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
