package obs

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	sc := SpanContext{TraceID: tr.nextTraceID(), SpanID: tr.nextSpanID()}
	h := Traceparent(sc)
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own output", h)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("malformed traceparent %q", h)
	}
}

func TestTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g", // bad flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want rejection", h)
		}
	}
}

func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("zz-nothexnothexnothexnothexnothexno-nothexnothexnoth-xx")
	f.Fuzz(func(t *testing.T, h string) {
		sc, ok := ParseTraceparent(h)
		if !ok {
			return
		}
		// Anything accepted must be valid and must round-trip through the
		// canonical form (modulo the flags byte, which Traceparent pins to
		// the sampled value).
		if !sc.Valid() {
			t.Fatalf("ParseTraceparent(%q) accepted an invalid context", h)
		}
		sc2, ok2 := ParseTraceparent(Traceparent(sc))
		if !ok2 || sc2 != sc {
			t.Fatalf("canonical form of %q does not round-trip", h)
		}
		if Traceparent(sc)[:53] != h[:53] {
			t.Fatalf("re-encoding %q changed the IDs: %q", h, Traceparent(sc))
		}
	})
}

func TestParseTraceID(t *testing.T) {
	id := NewTracer(1).nextTraceID()
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", id.String(), got, err)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("G", 32)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

// endSpanFor records one span under the given trace ID.
func endSpanFor(tr *Tracer, id TraceID, name string) {
	ctx := WithTracer(context.Background(), tr)
	ctx = WithSpanContext(ctx, SpanContext{TraceID: id, SpanID: tr.nextSpanID()})
	_, sp := StartSpan(ctx, name)
	sp.End()
}

func TestSpanBufferEvictionOrder(t *testing.T) {
	tr := NewTracer(3)
	ids := make([]TraceID, 5)
	for i := range ids {
		ids[i] = tr.nextTraceID()
	}
	// Fill to capacity with traces 0, 1, 2.
	for _, id := range ids[:3] {
		endSpanFor(tr, id, "s")
	}
	// A second span for trace 0 must not refresh its retention: eviction
	// is FIFO by trace creation, not LRU.
	endSpanFor(tr, ids[0], "s2")
	// Trace 3 evicts trace 0 (oldest created), trace 4 evicts trace 1.
	endSpanFor(tr, ids[3], "s")
	endSpanFor(tr, ids[4], "s")

	wantGone := []TraceID{ids[0], ids[1]}
	wantKept := []TraceID{ids[2], ids[3], ids[4]}
	for _, id := range wantGone {
		if _, ok := tr.Snapshot(id); ok {
			t.Errorf("trace %s should have been evicted", id)
		}
	}
	for _, id := range wantKept {
		if _, ok := tr.Snapshot(id); !ok {
			t.Errorf("trace %s should still be buffered", id)
		}
	}
	if got := tr.Evicted(); got != 2 {
		t.Errorf("Evicted() = %d, want 2", got)
	}
	if got := tr.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatalf("StartSpan without a tracer returned a live span")
	}
	if ctx2 != ctx {
		t.Fatalf("StartSpan without a tracer should return ctx unchanged")
	}
	// The nil span's whole surface must be safe.
	sp.SetAttr("k", "v")
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatalf("nil span has a valid context: %+v", sc)
	}
}

func TestSpanParentageAndAttrs(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	ctx, child := StartSpan(ctx, "child")
	child.SetAttr("method", "hatt")
	child.End()
	root.End()

	if root.Context().TraceID != child.Context().TraceID {
		t.Fatalf("child landed in a different trace")
	}
	snap, ok := tr.Snapshot(root.Context().TraceID)
	if !ok {
		t.Fatalf("trace not buffered")
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(snap.Spans))
	}
	// Children end first.
	if snap.Spans[0].Name != "child" || snap.Spans[1].Name != "root" {
		t.Fatalf("span order: %s, %s", snap.Spans[0].Name, snap.Spans[1].Name)
	}
	if snap.Spans[0].ParentID != snap.Spans[1].SpanID {
		t.Fatalf("child's parent %q is not the root span %q", snap.Spans[0].ParentID, snap.Spans[1].SpanID)
	}
	if snap.Spans[1].ParentID != "" {
		t.Fatalf("root span has a parent: %q", snap.Spans[1].ParentID)
	}
	if snap.Spans[0].Attrs["method"] != "hatt" {
		t.Fatalf("child attrs = %v", snap.Spans[0].Attrs)
	}
}

func TestSpanCapDropsExcess(t *testing.T) {
	tr := NewTracer(2)
	tr.spanCap = 3
	id := tr.nextTraceID()
	for i := 0; i < 5; i++ {
		endSpanFor(tr, id, fmt.Sprintf("s%d", i))
	}
	snap, ok := tr.Snapshot(id)
	if !ok {
		t.Fatalf("trace not buffered")
	}
	if len(snap.Spans) != 3 || snap.Dropped != 2 {
		t.Fatalf("got %d spans, %d dropped; want 3 kept, 2 dropped", len(snap.Spans), snap.Dropped)
	}
}

func TestStageHistogramObservation(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_stage_seconds", "stage durations", DefLatencyBuckets, "stage", "method")
	tr := NewTracer(4)
	tr.SetStageHistogram(h)
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "compile.search")
	sp.SetAttr("method", "hatt")
	time.Sleep(time.Millisecond)
	sp.End()
	if n := h.Count("compile.search", "hatt"); n != 1 {
		t.Fatalf("stage histogram count = %d, want 1", n)
	}
}
