// Package obs is the daemon's stdlib-only observability layer: request
// tracing (trace.go), a metrics registry with a Prometheus text surface
// (metrics.go), and the structured-logging conventions shared by hattd,
// hattc, and hattload (this file).
//
// The three concerns meet in the request path: the HTTP edge mints (or
// adopts, from a W3C traceparent header) a trace context and carries it
// in context.Context; every pipeline stage below opens a named span
// against the tracer found in that context; ended spans land both in
// the tracer's bounded trace buffer (served by GET /v1/traces/{id}) and
// in the stage-duration histogram of the metrics registry (served by
// GET /metrics). Log lines emitted through L(ctx) carry the same
// trace_id/span_id attributes, so one identifier correlates the span
// timeline, the metrics, and the logs of a single request — across
// fleet nodes, because the trace context rides outgoing peer fetches.
//
// Everything is opt-in by construction: code instrumented with
// StartSpan pays one context lookup and nil check when no tracer is
// attached, and L(ctx) degrades to slog.Default() outside a traced
// request.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// InitLogger installs the process-wide slog default used by every
// daemon and CLI in this repository: level is one of debug, info, warn,
// error; format is json (one object per line, machine-parseable) or
// text. The logger writes to w — conventionally os.Stderr, keeping
// stdout free for the documented machine-readable output (hattd's
// listening-address line, hattc's results, hattload's report).
func InitLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug | info | warn | error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "json", "":
		h = slog.NewJSONHandler(w, opts)
	case "text":
		h = slog.NewTextHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want json | text)", format)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}

// L returns the logger for a request context: slog.Default() with the
// context's trace_id/span_id attached when the context carries a span.
// It is the one logging entry point service and fleet code use, so
// every event inside a traced request is correlatable with its span
// timeline.
func L(ctx context.Context) *slog.Logger {
	l := slog.Default()
	if sc := SpanContextFrom(ctx); sc.Valid() {
		l = l.With("trace_id", sc.TraceID.String(), "span_id", sc.SpanID.String())
	}
	return l
}
