package tree

import (
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

// chain builds the degenerate JW-like tree: internal node i's Z child is
// internal node i+1; X and Y children are leaves. Leaf IDs in DFS order.
func chain(n int) *Tree {
	t := &Tree{N: n}
	internal := make([]*Node, n)
	for i := range internal {
		internal[i] = &Node{ID: 2*n + 1 + i, Qubit: i}
	}
	for i := 0; i+1 < n; i++ {
		internal[i].Child[BZ] = internal[i+1]
		internal[i+1].Parent = internal[i]
		internal[i+1].PBranch = BZ
	}
	t.Root = internal[0]
	id := 0
	t.Leaves = make([]*Node, 0, 2*n+1)
	var attach func(nd *Node)
	attach = func(nd *Node) {
		for b := 0; b < 3; b++ {
			if nd.Child[b] == nil {
				leaf := &Node{ID: id, Parent: nd, PBranch: Branch(b)}
				id++
				nd.Child[b] = leaf
				t.Leaves = append(t.Leaves, leaf)
			} else {
				attach(nd.Child[b])
			}
		}
	}
	attach(t.Root)
	return t
}

func TestBalancedValidates(t *testing.T) {
	for n := 1; n <= 40; n++ {
		tr := Balanced(n)
		if err := tr.Validate(); err != nil {
			t.Fatalf("Balanced(%d): %v", n, err)
		}
	}
}

func TestChainValidates(t *testing.T) {
	for n := 1; n <= 10; n++ {
		if err := chain(n).Validate(); err != nil {
			t.Fatalf("chain(%d): %v", n, err)
		}
	}
}

func TestLeafStringsAnticommute(t *testing.T) {
	// Any 2N of the 2N+1 extracted strings must pairwise anticommute —
	// in fact all 2N+1 pairwise anticommute.
	for _, tr := range []*Tree{Balanced(4), chain(4), Balanced(7)} {
		ss := tr.AllStrings()
		for i := range ss {
			for j := i + 1; j < len(ss); j++ {
				if !ss[i].Anticommutes(ss[j]) {
					t.Fatalf("strings %d (%s) and %d (%s) commute", i, ss[i], j, ss[j])
				}
			}
		}
	}
}

func TestLeafStringsDistinct(t *testing.T) {
	tr := Balanced(6)
	seen := map[string]bool{}
	for _, s := range tr.AllStrings() {
		k := s.Key()
		if seen[k] {
			t.Fatalf("duplicate string %s", s)
		}
		seen[k] = true
	}
}

func TestBalancedDepthIsLog(t *testing.T) {
	// Balanced tree weight per string ≈ ceil(log3(2N+1)).
	cases := map[int]int{1: 1, 4: 2, 13: 3, 40: 4}
	for n, want := range cases {
		if d := Balanced(n).Depth(); d != want {
			t.Errorf("Balanced(%d).Depth() = %d, want %d", n, d, want)
		}
	}
	// Chain tree depth is N.
	if d := chain(5).Depth(); d != 5 {
		t.Errorf("chain(5).Depth() = %d, want 5", d)
	}
}

func TestChainReproducesJordanWigner(t *testing.T) {
	// The chain tree with qubit i at depth i reproduces JW strings:
	// X child of node i = X_i Z_{i-1} … Z_0 pattern (with our convention
	// the Z's sit on the ancestors' qubits).
	tr := chain(2)
	ss := tr.AllStrings()
	// Leaf 0 = X child of root: X0. Leaf 1 = Y child: Y0.
	if ss[0].String() != "IX" || ss[1].String() != "IY" {
		t.Errorf("leaves 0,1 = %s,%s; want IX,IY", ss[0], ss[1])
	}
	// Leaves 2,3 hang off internal node 1 (reached by Z from root): XZ, YZ.
	if ss[2].String() != "XZ" || ss[3].String() != "YZ" {
		t.Errorf("leaves 2,3 = %s,%s; want XZ,YZ", ss[2], ss[3])
	}
	// Leaf 4 = ZZ, the discarded all-Z string.
	if ss[4].String() != "ZZ" {
		t.Errorf("leaf 4 = %s; want ZZ", ss[4])
	}
}

func TestPaperFigure3Example(t *testing.T) {
	// Build the paper's Figure 3 tree: root In2; In2.X = In3(leaf children),
	// In2.Y = In0, In2.Z = leaf; In0.X = leaf, In0.Y = leaf... The paper's
	// highlighted path gives I3Y2X1Z0: root In2 —Y→ In0 —Z→ In1 —X→ leaf.
	n := 4
	in := make([]*Node, n)
	for i := range in {
		in[i] = &Node{ID: 2*n + 1 + i, Qubit: i}
	}
	// Wire internal skeleton: In2 root, In2.X=In3, In2.Y=In0, In0.Z=In1.
	in[2].Child[BX] = in[3]
	in[3].Parent, in[3].PBranch = in[2], BX
	in[2].Child[BY] = in[0]
	in[0].Parent, in[0].PBranch = in[2], BY
	in[0].Child[BZ] = in[1]
	in[1].Parent, in[1].PBranch = in[0], BZ
	tr := &Tree{N: n, Root: in[2]}
	id := 0
	var attach func(nd *Node)
	attach = func(nd *Node) {
		for b := 0; b < 3; b++ {
			if nd.Child[b] == nil {
				leaf := &Node{ID: id, Parent: nd, PBranch: Branch(b)}
				id++
				nd.Child[b] = leaf
				tr.Leaves = append(tr.Leaves, leaf)
			} else {
				attach(nd.Child[b])
			}
		}
	}
	attach(tr.Root)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Find the leaf on path In2 -Y-> In0 -Z-> In1 -X-> leaf.
	leaf := in[1].Child[BX]
	s := tr.LeafString(leaf)
	if s.Compact() != "Y2X1Z0" {
		t.Errorf("path string = %s, want Y2X1Z0 (I3Y2X1Z0)", s.Compact())
	}
	if s.Letter(3) != pauli.I {
		t.Errorf("qubit 3 should be identity")
	}
}

func TestCanonicalPairingProperties(t *testing.T) {
	for _, tr := range []*Tree{Balanced(3), Balanced(8), chain(5)} {
		p := tr.CanonicalPairing()
		ss := tr.AllStrings()
		// The discarded leaf is the root's Z-descendant.
		if p.Discarded != tr.Root.DescZ().ID {
			t.Fatalf("discarded = %d, want root descZ %d", p.Discarded, tr.Root.DescZ().ID)
		}
		paired := 0
		for id, partner := range p.PartnerOf {
			if id == p.Discarded {
				if partner != -1 {
					t.Fatalf("discarded leaf has partner")
				}
				continue
			}
			if partner < 0 || p.PartnerOf[partner] != id {
				t.Fatalf("pairing not symmetric at %d", id)
			}
			paired++
			if partner < id {
				continue // check each pair once
			}
			a, b := ss[id], ss[partner]
			// Exactly one qubit with (X,Y) or (Y,X); all others act equally
			// on |0⟩.
			xy := 0
			for q := 0; q < tr.N; q++ {
				la, lb := a.Letter(q), b.Letter(q)
				if (la == pauli.X && lb == pauli.Y) || (la == pauli.Y && lb == pauli.X) {
					xy++
					continue
				}
				if a.ActsOnZeroAs(q) != b.ActsOnZeroAs(q) {
					t.Fatalf("pair (%s,%s) differ on |0⟩ at qubit %d", a, b, q)
				}
			}
			if xy != 1 {
				t.Fatalf("pair (%s,%s) has %d X/Y pair qubits, want 1", a, b, xy)
			}
		}
		if paired != 2*tr.N {
			t.Fatalf("paired %d leaves, want %d", paired, 2*tr.N)
		}
	}
}

func TestMajoranaAssignment(t *testing.T) {
	tr := Balanced(5)
	p := tr.CanonicalPairing()
	assign := tr.MajoranaAssignment(p)
	if len(assign) != 10 {
		t.Fatalf("assignment length %d", len(assign))
	}
	ss := tr.AllStrings()
	seen := map[int]bool{}
	for l := 0; l < tr.N; l++ {
		even, odd := assign[2*l], assign[2*l+1]
		if seen[even] || seen[odd] {
			t.Fatalf("leaf reused in assignment")
		}
		seen[even], seen[odd] = true, true
		if p.PartnerOf[even] != odd {
			t.Fatalf("assignment pairs %d,%d not partners", even, odd)
		}
		// The even string must carry X and the odd string Y on their shared
		// pair qubit.
		a, b := ss[even], ss[odd]
		found := false
		for q := 0; q < tr.N; q++ {
			if a.Letter(q) == pauli.X && b.Letter(q) == pauli.Y {
				found = true
			}
			if a.Letter(q) == pauli.Y && b.Letter(q) == pauli.X {
				t.Fatalf("pair (M%d,M%d) has (Y,X) order", 2*l, 2*l+1)
			}
		}
		if !found {
			t.Fatalf("pair (M%d,M%d) missing (X,Y) qubit", 2*l, 2*l+1)
		}
	}
	if seen[p.Discarded] {
		t.Fatalf("discarded leaf assigned")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := Balanced(3)
	// Break a branch link: the leaf claims a branch position its parent
	// disagrees with.
	tr.Leaves[0].PBranch = (tr.Leaves[0].PBranch + 1) % 3
	if err := tr.Validate(); err == nil {
		t.Error("Validate missed corrupted branch link")
	}
	// Duplicate qubit.
	tr2 := Balanced(3)
	tr2.Root.Child[BX].Qubit = tr2.Root.Qubit
	if !tr2.Root.Child[BX].IsLeaf() {
		if err := tr2.Validate(); err == nil {
			t.Error("Validate missed duplicate qubit")
		}
	}
}

func TestDescZ(t *testing.T) {
	tr := Balanced(4)
	d := tr.Root.DescZ()
	if !d.IsLeaf() {
		t.Fatal("DescZ returned non-leaf")
	}
	// Walking Z branches manually must agree.
	n := tr.Root
	for !n.IsLeaf() {
		n = n.Child[BZ]
	}
	if n != d {
		t.Fatal("DescZ mismatch")
	}
	// A leaf is its own Z-descendant.
	if tr.Leaves[0].DescZ() != tr.Leaves[0] {
		t.Fatal("leaf DescZ should be itself")
	}
}

func TestRandomTreesAnticommute(t *testing.T) {
	// Property: random complete ternary trees always yield pairwise
	// anticommuting strings.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(8)
		tr := randomTree(r, n)
		if err := tr.Validate(); err != nil {
			t.Fatalf("random tree invalid: %v", err)
		}
		ss := tr.AllStrings()
		for i := range ss {
			for j := i + 1; j < len(ss); j++ {
				if !ss[i].Anticommutes(ss[j]) {
					t.Fatalf("random tree strings commute: %s vs %s", ss[i], ss[j])
				}
			}
		}
	}
}

// randomTree builds a random complete ternary tree by repeatedly merging
// three random roots under a new internal node (mirroring HATT's bottom-up
// construction with random selections).
func randomTree(r *rand.Rand, n int) *Tree {
	t := &Tree{N: n, Leaves: make([]*Node, 2*n+1)}
	pool := make([]*Node, 2*n+1)
	for i := range pool {
		leaf := &Node{ID: i}
		pool[i] = leaf
		t.Leaves[i] = leaf
	}
	for i := 0; i < n; i++ {
		// Pick three distinct random nodes from the pool.
		r.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		parent := &Node{ID: 2*n + 1 + i, Qubit: i}
		parent.SetChildren(pool[0], pool[1], pool[2])
		pool = append(pool[3:], parent)
	}
	t.Root = pool[0]
	return t
}
