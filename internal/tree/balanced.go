package tree

// Balanced builds the balanced ternary tree with N internal nodes used by
// the BTT baseline (Jiang et al.): internal nodes are placed breadth-first
// so every level is filled before the next begins, then 2N+1 leaves are
// appended to complete the tree. Internal node j (BFS order) is qubit j;
// leaf IDs are assigned 0..2N in depth-first (X,Y,Z) order.
func Balanced(n int) *Tree {
	if n <= 0 {
		panic("tree: Balanced requires n >= 1")
	}
	internal := make([]*Node, n)
	for i := range internal {
		internal[i] = &Node{ID: 2*n + 1 + i, Qubit: i}
	}
	// Breadth-first attachment: node j's children are internal nodes
	// 3j+1, 3j+2, 3j+3 when those exist.
	nextChild := 1
	type slot struct {
		parent *Node
		branch Branch
	}
	var openSlots []slot
	for j := 0; j < n; j++ {
		for b := 0; b < 3; b++ {
			if nextChild < n {
				c := internal[nextChild]
				internal[j].Child[b] = c
				c.Parent = internal[j]
				c.PBranch = Branch(b)
				nextChild++
			} else {
				openSlots = append(openSlots, slot{internal[j], Branch(b)})
			}
		}
	}
	t := &Tree{N: n, Root: internal[0], Leaves: make([]*Node, 0, 2*n+1)}
	// Fill open slots with leaves in depth-first order so that leaf IDs
	// increase left-to-right. openSlots is already in BFS parent order;
	// re-walk the tree depth-first to number leaves deterministically.
	_ = openSlots
	id := 0
	var attach func(nd *Node)
	attach = func(nd *Node) {
		for b := 0; b < 3; b++ {
			if nd.Child[b] == nil {
				leaf := &Node{ID: id, Parent: nd, PBranch: Branch(b)}
				id++
				nd.Child[b] = leaf
				t.Leaves = append(t.Leaves, leaf)
			} else {
				attach(nd.Child[b])
			}
		}
	}
	attach(t.Root)
	return t
}
