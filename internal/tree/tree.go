// Package tree implements the complete ternary trees at the heart of
// ternary-tree fermion-to-qubit mappings (§III-A of the paper).
//
// A complete ternary tree with N internal nodes has 2N+1 leaves. Internal
// node In_j corresponds to qubit q_j; each root-to-leaf path spells out a
// Pauli string: at each internal node the path contributes X, Y, or Z on
// that node's qubit depending on whether it descends into the left (X),
// middle (Y), or right (Z) child, and identity on qubits not on the path.
//
// The package also provides the vacuum-preserving leaf pairing used by both
// the balanced baseline and HATT: the Z-descendant of the X child of any
// internal node pairs with the Z-descendant of its Y child, giving the two
// strings an (X,Y) pair on that qubit and |0⟩-equivalent letters elsewhere.
package tree

import (
	"fmt"

	"repro/internal/pauli"
)

// Branch labels the three child positions of an internal node.
type Branch int

// Child positions: the X (left), Y (middle), and Z (right) branches.
const (
	BX Branch = iota
	BY
	BZ
)

// Letter returns the Pauli letter contributed by descending this branch.
func (b Branch) Letter() pauli.Letter {
	switch b {
	case BX:
		return pauli.X
	case BY:
		return pauli.Y
	default:
		return pauli.Z
	}
}

// Node is a ternary-tree node. Leaves have no children; internal nodes have
// exactly three (the tree is complete). ID conventions follow the paper's
// Algorithm 1: leaves are O_0 … O_2N, internal nodes O_{2N+1} … O_{3N}.
// Qubit is meaningful only for internal nodes.
type Node struct {
	ID     int
	Qubit  int
	Parent *Node
	// PBranch records which branch of Parent this node hangs from.
	PBranch Branch
	Child   [3]*Node // nil for leaves
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Child[0] == nil }

// SetChildren attaches x, y, z as the children of n and fixes their parent
// links.
func (n *Node) SetChildren(x, y, z *Node) {
	n.Child[BX], n.Child[BY], n.Child[BZ] = x, y, z
	for b, c := range n.Child {
		if c == nil {
			panic("tree: nil child in SetChildren")
		}
		c.Parent = n
		c.PBranch = Branch(b)
	}
}

// DescZ returns the Z-descendant: the leaf reached by repeatedly taking the
// Z branch (the node itself if it is a leaf).
func (n *Node) DescZ() *Node {
	for !n.IsLeaf() {
		n = n.Child[BZ]
	}
	return n
}

// Tree is a complete ternary tree for an N-mode system: N internal nodes
// (qubits) and 2N+1 leaves.
type Tree struct {
	N      int
	Root   *Node
	Leaves []*Node // indexed by leaf ID 0..2N
}

// Validate checks structural invariants: completeness, leaf count, parent
// links, and qubit numbering covering 0..N-1 exactly once.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("tree: nil root")
	}
	if len(t.Leaves) != 2*t.N+1 {
		return fmt.Errorf("tree: %d leaves, want %d", len(t.Leaves), 2*t.N+1)
	}
	seenQubit := make(map[int]bool)
	leaves := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.IsLeaf() {
			leaves++
			for b := 1; b < 3; b++ {
				if n.Child[b] != nil {
					return fmt.Errorf("tree: partial children on node %d", n.ID)
				}
			}
			return nil
		}
		if n.Qubit < 0 || n.Qubit >= t.N {
			return fmt.Errorf("tree: qubit %d out of range on node %d", n.Qubit, n.ID)
		}
		if seenQubit[n.Qubit] {
			return fmt.Errorf("tree: duplicate qubit %d", n.Qubit)
		}
		seenQubit[n.Qubit] = true
		for b, c := range n.Child {
			if c == nil {
				return fmt.Errorf("tree: internal node %d missing child %d", n.ID, b)
			}
			if c.Parent != n || c.PBranch != Branch(b) {
				return fmt.Errorf("tree: bad parent link under node %d", n.ID)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if leaves != 2*t.N+1 {
		return fmt.Errorf("tree: walked %d leaves, want %d", leaves, 2*t.N+1)
	}
	if len(seenQubit) != t.N {
		return fmt.Errorf("tree: %d qubits, want %d", len(seenQubit), t.N)
	}
	return nil
}

// LeafString extracts the Pauli string for one leaf: the letters contributed
// by the internal nodes along the root-to-leaf path (identity elsewhere).
func (t *Tree) LeafString(leaf *Node) pauli.String {
	s := pauli.Identity(t.N)
	for n := leaf; n.Parent != nil; n = n.Parent {
		s.SetLetter(n.Parent.Qubit, n.PBranch.Letter())
	}
	return s
}

// AllStrings extracts the 2N+1 Pauli strings indexed by leaf ID.
func (t *Tree) AllStrings() []pauli.String {
	out := make([]pauli.String, len(t.Leaves))
	for i, l := range t.Leaves {
		out[i] = t.LeafString(l)
	}
	return out
}

// Depth returns the maximum number of internal nodes on any root-to-leaf
// path (equals the maximum Pauli weight of an extracted string).
func (t *Tree) Depth() int {
	var depth func(n *Node) int
	depth = func(n *Node) int {
		if n.IsLeaf() {
			return 0
		}
		d := 0
		for _, c := range n.Child {
			if cd := depth(c); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	return depth(t.Root)
}

// Pairing maps each even leaf ID 2l to its partner 2l+1 under the
// vacuum-preserving assignment, plus the discarded leaf.
type Pairing struct {
	// PartnerOf[id] is the paired leaf ID, or -1 for the discarded leaf.
	PartnerOf []int
	// Discarded is the ID of the unpaired leaf (the root's Z-descendant in
	// canonical pairings).
	Discarded int
}

// CanonicalPairing pairs leaves of an arbitrary complete ternary tree so
// that every pair shares an (X,Y) letter pair on one qubit and acts
// |0⟩-equivalently elsewhere: recursively, the Z-descendant of a node's X
// child pairs with the Z-descendant of its Y child; the Z child's
// Z-descendant propagates upward and the root's Z-descendant is discarded.
func (t *Tree) CanonicalPairing() Pairing {
	p := Pairing{PartnerOf: make([]int, len(t.Leaves))}
	for i := range p.PartnerOf {
		p.PartnerOf[i] = -1
	}
	var visit func(n *Node) *Node // returns the subtree's unpaired Z-descendant leaf
	visit = func(n *Node) *Node {
		if n.IsLeaf() {
			return n
		}
		lx := visit(n.Child[BX])
		ly := visit(n.Child[BY])
		lz := visit(n.Child[BZ])
		p.PartnerOf[lx.ID] = ly.ID
		p.PartnerOf[ly.ID] = lx.ID
		return lz
	}
	p.Discarded = visit(t.Root).ID
	return p
}

// MajoranaAssignment returns, for each Majorana index 0..2N-1, the leaf ID
// whose string realizes it, built from a pairing: each (X-side, Y-side)
// pair becomes (M_2l, M_2l+1) in discovery order. The discarded leaf is
// unassigned. The X-side (even) member of each pair is the one whose letter
// on the pair qubit is X.
func (t *Tree) MajoranaAssignment(p Pairing) []int {
	assign := make([]int, 2*t.N)
	next := 0
	var visit func(n *Node) *Node
	visit = func(n *Node) *Node {
		if n.IsLeaf() {
			return n
		}
		lx := visit(n.Child[BX])
		ly := visit(n.Child[BY])
		lz := visit(n.Child[BZ])
		assign[next] = lx.ID
		assign[next+1] = ly.ID
		next += 2
		return lz
	}
	visit(t.Root)
	if next != 2*t.N {
		panic("tree: pairing did not cover all leaves")
	}
	return assign
}
