// Package fault is the deterministic failure-injection layer for the
// service stack. Production code names its failure-prone sites with
// failpoints — fault.Point("store.disk.write"), fault.Mutate(...) — and
// each site is a no-op until a plan is armed (hattd -fault-plan, or the
// HATT_FAULT_PLAN environment variable). The disarmed fast path is a
// single atomic pointer load, so instrumented hot code pays nothing in
// normal operation.
//
// A plan is a seeded set of per-site rules:
//
//	seed=42;fleet.peer.status=error*6;store.disk.write=torn:0.5@30
//
// Grammar, semicolon-separated:
//
//	seed=N                      splitmix64 seed shared by every rule
//	<site>=<mode>[:arg][@pct][*count]
//
// Modes:
//
//	error          Point returns ErrInjected
//	latency:<dur>  PointCtx sleeps for <dur> (Go duration), honoring ctx
//	torn:<frac>    Mutate truncates the payload to <frac> of its length
//	short:<frac>   alias of torn for read-side sites
//
// "@pct" fires the rule on that percentage of evaluations (default
// 100), decided by splitmix64 over (seed, site, evaluation index) so a
// plan replays identically across runs. "*count" caps the number of
// firings (a burst); after the cap the site heals. Every decision and
// firing is counted per site and exported through Stats for the /v1
// surface, so a chaos run can assert its plan actually executed.
package fault

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable ArmFromEnv consults when no
// explicit plan is given.
const EnvVar = "HATT_FAULT_PLAN"

// ErrInjected is the sentinel returned by an armed error-mode
// failpoint. Instrumented sites propagate it like any other failure;
// tests and operators can identify injected faults with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// mode is what an armed rule does when it fires.
type mode uint8

const (
	modeError mode = iota
	modeLatency
	modeTorn
)

// rule is one armed site. The counters are atomics so concurrent
// callers take deterministic, non-overlapping evaluation indexes.
type rule struct {
	site  string
	mode  mode
	delay time.Duration // modeLatency
	frac  float64       // modeTorn: fraction of the payload that survives
	pct   uint64        // firing probability in percent, 1..100
	burst uint64        // max firings; 0 = unlimited

	evals atomic.Uint64 // evaluation counter (decision index)
	fired atomic.Uint64 // firings so far
}

// fire decides deterministically whether this evaluation injects.
func (r *rule) fire(seed uint64) bool {
	n := r.evals.Add(1) - 1
	if r.pct < 100 {
		h := splitmix64(seed ^ siteHash(r.site) ^ splitmix64(n))
		if h%100 >= r.pct {
			return false
		}
	}
	if r.burst > 0 {
		// Post-increment cap: the first `burst` winning evaluations
		// fire, later ones see an exhausted budget and pass through.
		if r.fired.Add(1) > r.burst {
			return false
		}
		return true
	}
	r.fired.Add(1)
	return true
}

// Plan is a parsed, armed set of rules. Plans are immutable after
// Parse; all mutable state lives in per-rule atomic counters.
type Plan struct {
	seed  uint64
	src   string
	rules map[string]*rule
}

// current is the armed plan; nil means every failpoint is a no-op.
var current atomic.Pointer[Plan]

// Enabled reports whether a plan is armed.
func Enabled() bool { return current.Load() != nil }

// Active returns the source text of the armed plan, or "".
func Active() string {
	if p := current.Load(); p != nil {
		return p.src
	}
	return ""
}

// Arm parses and installs a plan, replacing any armed one. An empty
// string disarms.
func Arm(plan string) error {
	if strings.TrimSpace(plan) == "" {
		Disarm()
		return nil
	}
	p, err := Parse(plan)
	if err != nil {
		return err
	}
	current.Store(p)
	slog.Warn("fault plan armed", "plan", p.src)
	return nil
}

// ArmFromEnv arms from the HATT_FAULT_PLAN environment variable if it
// is set, and reports the plan text that was armed (empty when unset).
func ArmFromEnv() (string, error) {
	plan := os.Getenv(EnvVar)
	if plan == "" {
		return "", nil
	}
	return plan, Arm(plan)
}

// Disarm removes the armed plan; every failpoint returns to a no-op.
func Disarm() {
	if current.Load() != nil {
		slog.Info("fault plan disarmed")
	}
	current.Store(nil)
}

// Parse compiles plan text into a Plan without arming it.
func Parse(text string) (*Plan, error) {
	p := &Plan{src: text, rules: make(map[string]*rule)}
	seenSeed := false
	for _, clause := range strings.Split(text, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("fault: malformed clause %q (want key=value)", clause)
		}
		if key == "seed" {
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
			p.seed, seenSeed = n, true
			continue
		}
		r, err := parseRule(key, val)
		if err != nil {
			return nil, err
		}
		if _, dup := p.rules[key]; dup {
			return nil, fmt.Errorf("fault: duplicate rule for site %q", key)
		}
		p.rules[key] = r
	}
	if len(p.rules) == 0 {
		return nil, errors.New("fault: plan has no site rules")
	}
	if !seenSeed {
		p.seed = 1
	}
	return p, nil
}

// parseRule compiles one site clause: mode[:arg][@pct][*count].
func parseRule(site, spec string) (*rule, error) {
	r := &rule{site: site, pct: 100}
	if body, count, ok := strings.Cut(spec, "*"); ok {
		n, err := strconv.ParseUint(count, 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("fault: %s: bad burst count %q", site, count)
		}
		r.burst, spec = n, body
	}
	if body, pct, ok := strings.Cut(spec, "@"); ok {
		n, err := strconv.ParseUint(pct, 10, 64)
		if err != nil || n == 0 || n > 100 {
			return nil, fmt.Errorf("fault: %s: bad firing percentage %q (want 1..100)", site, pct)
		}
		r.pct, spec = n, body
	}
	kind, arg, hasArg := strings.Cut(spec, ":")
	switch kind {
	case "error":
		if hasArg {
			return nil, fmt.Errorf("fault: %s: error mode takes no argument", site)
		}
		r.mode = modeError
	case "latency":
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("fault: %s: bad latency %q (want a positive Go duration)", site, arg)
		}
		r.mode, r.delay = modeLatency, d
	case "torn", "short":
		f, err := strconv.ParseFloat(arg, 64)
		if err != nil || f < 0 || f >= 1 {
			return nil, fmt.Errorf("fault: %s: bad fraction %q (want [0,1))", site, arg)
		}
		r.mode, r.frac = modeTorn, f
	default:
		return nil, fmt.Errorf("fault: %s: unknown mode %q (want error|latency:<dur>|torn:<frac>|short:<frac>)", site, kind)
	}
	return r, nil
}

// Point evaluates an error-mode failpoint. It returns ErrInjected when
// the armed plan says this site fails now, nil otherwise (including
// when the site's rule is a latency or payload mode — those only act
// through PointCtx and Mutate).
func Point(site string) error {
	p := current.Load()
	if p == nil {
		return nil
	}
	r := p.rules[site]
	if r == nil || r.mode != modeError || !r.fire(p.seed) {
		return nil
	}
	slog.Debug("fault injected", "site", site, "mode", "error")
	return fmt.Errorf("%w at %s", ErrInjected, site)
}

// PointCtx evaluates an error- or latency-mode failpoint. Latency
// rules sleep for the configured duration but give up early — returning
// ctx.Err() — if the caller's context ends first.
func PointCtx(ctx context.Context, site string) error {
	p := current.Load()
	if p == nil {
		return nil
	}
	r := p.rules[site]
	if r == nil {
		return nil
	}
	switch r.mode {
	case modeError:
		if r.fire(p.seed) {
			slog.Debug("fault injected", "site", site, "mode", "error")
			return fmt.Errorf("%w at %s", ErrInjected, site)
		}
	case modeLatency:
		if r.fire(p.seed) {
			slog.Debug("fault injected", "site", site, "mode", "latency")
			t := time.NewTimer(r.delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

// Mutate applies a torn/short payload rule to b, returning the
// truncated prefix when the site fires and b unchanged otherwise. The
// caller keeps ownership either way; the result aliases b.
func Mutate(site string, b []byte) []byte {
	p := current.Load()
	if p == nil {
		return b
	}
	r := p.rules[site]
	if r == nil || r.mode != modeTorn || !r.fire(p.seed) {
		return b
	}
	return b[:int(float64(len(b))*r.frac)]
}

// Stats returns per-site firing counts for the armed plan, nil when
// disarmed. Sites that have not fired report 0, so a chaos harness can
// distinguish "armed but idle" from "not armed".
func Stats() map[string]uint64 {
	p := current.Load()
	if p == nil {
		return nil
	}
	out := make(map[string]uint64, len(p.rules))
	for site, r := range p.rules {
		n := r.fired.Load()
		if r.burst > 0 && n > r.burst {
			n = r.burst
		}
		out[site] = n
	}
	return out
}

// Sites returns the armed plan's instrumented site names, sorted, for
// log lines and error messages. Nil when disarmed.
func Sites() []string {
	p := current.Load()
	if p == nil {
		return nil
	}
	sites := make([]string, 0, len(p.rules))
	for site := range p.rules {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	return sites
}

// siteHash folds a site name into the splitmix64 stream (FNV-1a).
func siteHash(site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the same mixer hattload uses for its deterministic
// request streams; identical seeds replay identical fault schedules.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
