package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	Disarm()
	if Enabled() || Active() != "" || Stats() != nil || Sites() != nil {
		t.Fatal("disarmed state leaks plan data")
	}
	if err := Point("store.disk.write"); err != nil {
		t.Fatalf("disarmed Point: %v", err)
	}
	b := []byte("payload")
	if got := Mutate("store.disk.write", b); len(got) != len(b) {
		t.Fatalf("disarmed Mutate truncated: %d/%d", len(got), len(b))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"seed=1",                // no site rules
		"site",                  // no '='
		"seed=nope;x=error",     // bad seed
		"x=explode",             // unknown mode
		"x=error:arg",           // error takes no arg
		"x=latency:fast",        // bad duration
		"x=latency:-1s",         // non-positive duration
		"x=torn:1.5",            // fraction out of range
		"x=torn:0.5@0",          // pct out of range
		"x=torn:0.5@101",        // pct out of range
		"x=error*0",             // zero burst
		"x=error;x=latency:1ms", // duplicate site
	}
	for _, plan := range bad {
		if _, err := Parse(plan); err == nil {
			t.Errorf("Parse(%q) accepted a bad plan", plan)
		}
	}
}

func TestErrorPointFiresAndCounts(t *testing.T) {
	defer Disarm()
	if err := Arm("seed=7;a.b=error*3"); err != nil {
		t.Fatal(err)
	}
	var injected int
	for i := 0; i < 10; i++ {
		if err := Point("a.b"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("wrong sentinel: %v", err)
			}
			injected++
		}
	}
	if injected != 3 {
		t.Fatalf("burst *3 fired %d times", injected)
	}
	if got := Stats()["a.b"]; got != 3 {
		t.Fatalf("Stats = %d, want 3", got)
	}
	if err := Point("other.site"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestPercentageIsDeterministic(t *testing.T) {
	defer Disarm()
	run := func() []bool {
		if err := Arm("seed=42;a.b=error@30"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = Point("a.b") != nil
		}
		return out
	}
	first, second := run(), run()
	fired := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("decision %d differs across identical plans", i)
		}
		if first[i] {
			fired++
		}
	}
	// 30% of 200 with a decent mixer: expect a broad but nonzero band.
	if fired < 30 || fired > 90 {
		t.Fatalf("@30 fired %d/200 times", fired)
	}

	if err := Arm("seed=43;a.b=error@30"); err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range first {
		if (Point("a.b") != nil) != first[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("changing the seed did not change the schedule")
	}
}

func TestLatencyHonorsContext(t *testing.T) {
	defer Disarm()
	if err := Arm("seed=1;slow.site=latency:30s"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := PointCtx(ctx, "slow.site")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("latency failpoint ignored the context")
	}

	if err := Arm("seed=1;quick.site=latency:5ms"); err != nil {
		t.Fatal(err)
	}
	if err := PointCtx(context.Background(), "quick.site"); err != nil {
		t.Fatalf("completed latency injection should be nil, got %v", err)
	}
}

func TestMutateTruncates(t *testing.T) {
	defer Disarm()
	if err := Arm("seed=1;wire=torn:0.5*1"); err != nil {
		t.Fatal(err)
	}
	b := []byte("0123456789")
	if got := Mutate("wire", b); len(got) != 5 {
		t.Fatalf("torn:0.5 kept %d/10 bytes", len(got))
	}
	if got := Mutate("wire", b); len(got) != 10 {
		t.Fatalf("burst *1 still truncating: %d/10", len(got))
	}
	// Error-mode sites never truncate, and torn sites never error.
	if err := Arm("seed=1;wire=short:0"); err != nil {
		t.Fatal(err)
	}
	if err := Point("wire"); err != nil {
		t.Fatalf("torn rule fired through Point: %v", err)
	}
	if got := Mutate("wire", b); len(got) != 0 {
		t.Fatalf("short:0 kept %d bytes", len(got))
	}
}

func TestArmFromEnv(t *testing.T) {
	defer Disarm()
	t.Setenv(EnvVar, "seed=9;x=error")
	plan, err := ArmFromEnv()
	if err != nil || plan != "seed=9;x=error" {
		t.Fatalf("ArmFromEnv = %q, %v", plan, err)
	}
	if !Enabled() || Active() != plan {
		t.Fatal("env plan not armed")
	}
	if got := Sites(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Sites = %v", got)
	}
	if !strings.Contains(Point("x").Error(), "at x") {
		t.Fatal("injected error does not name its site")
	}

	t.Setenv(EnvVar, "")
	Disarm()
	if plan, err := ArmFromEnv(); err != nil || plan != "" || Enabled() {
		t.Fatalf("unset env armed a plan: %q %v", plan, err)
	}
}
