// Package version carries the build identity shared by every binary in
// this repository (hattc, benchtab, hattd). The default is "dev"; CI
// stamps release builds with
//
//	go build -ldflags "-X repro/internal/version.Version=<rev>" ./...
//
// so `<tool> -version` and the hattd /v1/healthz endpoint report which
// revision is running.
package version

import (
	"fmt"
	"runtime"
)

// Version is the build identifier, overridden at link time by CI.
var Version = "dev"

// String formats the version line printed by the -version flag of every
// command: the tool name, the stamped revision, and the Go toolchain.
func String(tool string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)", tool, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
